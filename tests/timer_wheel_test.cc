#include "src/runtime/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <queue>
#include <random>
#include <vector>

#include "src/sim/event_loop.h"

namespace p2 {
namespace {

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel;
  wheel.Schedule(3.0, []() {});
  wheel.Schedule(1.0, []() {});
  wheel.Schedule(2.0, []() {});
  double at;
  Task task;
  std::vector<double> fired;
  while (wheel.PopDue(10.0, &at, &task)) {
    fired.push_back(at);
  }
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TimerWheel, FifoAmongIdenticalDeadlines) {
  TimerWheel wheel;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    wheel.Schedule(1.0, [&order, i]() { order.push_back(i); });
  }
  double at;
  Task task;
  while (wheel.PopDue(2.0, &at, &task)) {
    task();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(TimerWheel, SubTickDeadlinesStillOrderByExactTime) {
  // Two deadlines inside the same 1/1024s tick must fire in deadline
  // order, not insertion order.
  TimerWheel wheel;
  double base = 5.0;
  TimerId later = wheel.Schedule(base + 0.0004, []() {});
  TimerId earlier = wheel.Schedule(base + 0.0001, []() {});
  (void)later;
  (void)earlier;
  double at;
  Task task;
  ASSERT_TRUE(wheel.PopDue(10.0, &at, &task));
  EXPECT_DOUBLE_EQ(at, base + 0.0001);
  ASSERT_TRUE(wheel.PopDue(10.0, &at, &task));
  EXPECT_DOUBLE_EQ(at, base + 0.0004);
}

TEST(TimerWheel, CancelBeforeFire) {
  TimerWheel wheel;
  bool ran = false;
  TimerId id = wheel.Schedule(1.0, [&ran]() { ran = true; });
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_EQ(wheel.size(), 0u);
  double at;
  Task task;
  EXPECT_FALSE(wheel.PopDue(10.0, &at, &task));
  EXPECT_FALSE(ran);
}

TEST(TimerWheel, CancelAfterFireIsNoOp) {
  TimerWheel wheel;
  TimerId id = wheel.Schedule(1.0, []() {});
  double at;
  Task task;
  ASSERT_TRUE(wheel.PopDue(2.0, &at, &task));
  // The id is dead now; cancelling it must not disturb anything — not even
  // a new timer recycled into the same pool slot.
  TimerId fresh = wheel.Schedule(5.0, []() {});
  EXPECT_FALSE(wheel.Cancel(id));
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_TRUE(wheel.Cancel(fresh));
  EXPECT_FALSE(wheel.Cancel(fresh));  // double cancel: also a no-op
}

TEST(TimerWheel, CancelWhileInDueBucket) {
  TimerWheel wheel;
  // Same tick: both get promoted to the due bucket together; cancelling
  // one after partial draining must still suppress it.
  bool a_ran = false;
  bool b_ran = false;
  wheel.Schedule(1.0, [&a_ran]() { a_ran = true; });
  TimerId b = wheel.Schedule(1.0, [&b_ran]() { b_ran = true; });
  double at;
  Task task;
  ASSERT_TRUE(wheel.PopDue(2.0, &at, &task));
  task();  // fires a
  EXPECT_TRUE(wheel.Cancel(b));
  EXPECT_FALSE(wheel.PopDue(2.0, &at, &task));
  EXPECT_TRUE(a_ran);
  EXPECT_FALSE(b_ran);
}

TEST(TimerWheel, FarFutureTimersCascadeDownCorrectly) {
  TimerWheel wheel;
  // Spread deadlines across every wheel level: sub-tick, seconds, minutes,
  // hours, days, and beyond the 2^32-tick horizon (~49 days at 1/1024s).
  std::vector<double> deadlines{0.001, 0.5,     30.0,      600.0,
                                7200.0, 86400.0, 5000000.0, 1.0e7};
  for (double d : deadlines) {
    wheel.Schedule(d, []() {});
  }
  double at;
  Task task;
  std::vector<double> fired;
  while (wheel.PopDue(2.0e7, &at, &task)) {
    fired.push_back(at);
  }
  EXPECT_EQ(fired, deadlines);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, PopHonorsDeadlineBound) {
  TimerWheel wheel;
  wheel.Schedule(1.0, []() {});
  wheel.Schedule(5.0, []() {});
  double at;
  Task task;
  ASSERT_TRUE(wheel.PopDue(1.0, &at, &task));  // exactly-at-deadline fires
  EXPECT_DOUBLE_EQ(at, 1.0);
  EXPECT_FALSE(wheel.PopDue(4.999, &at, &task));
  EXPECT_EQ(wheel.size(), 1u);
  ASSERT_TRUE(wheel.PopDue(5.0, &at, &task));
}

TEST(TimerWheel, NextDueHintBoundsTheEarliestDeadline) {
  TimerWheel wheel;
  EXPECT_TRUE(std::isinf(wheel.NextDueHint()));
  wheel.Schedule(42.5, []() {});
  double hint = wheel.NextDueHint();
  EXPECT_LE(hint, 42.5);
  EXPECT_GT(hint, 0.0);
}

TEST(TimerWheel, ScheduleFromDrainedPositionGoesForward) {
  // After the wheel has advanced, a schedule landing on the current tick
  // still fires (the Defer(0) path used by run-to-completion handlers).
  TimerWheel wheel;
  wheel.Schedule(1.0, []() {});
  double at;
  Task task;
  ASSERT_TRUE(wheel.PopDue(1.0, &at, &task));
  wheel.Schedule(1.0, []() {});  // same tick as the wheel's position
  ASSERT_TRUE(wheel.PopDue(1.0, &at, &task));
  EXPECT_DOUBLE_EQ(at, 1.0);
}

// --- Property test: equivalence against the reference heap -------------

// The executor contract the old binary-heap implementation defined:
// fire in (deadline, schedule-order), exact deadlines, cancellation.
struct RefEntry {
  double at;
  uint64_t seq;
  uint64_t tag;
};
struct RefLater {
  bool operator()(const RefEntry& a, const RefEntry& b) const {
    if (a.at != b.at) {
      return a.at > b.at;
    }
    return a.seq > b.seq;
  }
};

TEST(TimerWheelProperty, MatchesReferenceHeapOnRandomizedSchedules) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int round = 0; round < 20; ++round) {
    TimerWheel wheel;
    std::priority_queue<RefEntry, std::vector<RefEntry>, RefLater> heap;
    std::vector<TimerId> wheel_ids;
    std::vector<uint64_t> cancelled;  // tags cancelled in both models
    uint64_t next_tag = 0;
    uint64_t seq = 0;
    double now = 0;

    std::uniform_real_distribution<double> delay_dist(0.0, 2000.0);
    std::uniform_int_distribution<int> op_dist(0, 99);
    std::vector<uint64_t> wheel_fired;  // tags in wheel firing order

    auto fire_tag = [&wheel_fired](uint64_t tag) { wheel_fired.push_back(tag); };

    for (int step = 0; step < 500; ++step) {
      int op = op_dist(rng);
      if (op < 60 || wheel_ids.empty()) {
        // Schedule: occasionally far future / duplicate deadlines.
        double delay = delay_dist(rng);
        if (op % 10 == 0) {
          delay = delay * 1e4;  // cross-level cascades
        } else if (op % 10 == 1) {
          delay = std::floor(delay);  // deliberate tick collisions
        }
        uint64_t tag = next_tag++;
        wheel_ids.push_back(wheel.Schedule(now + delay, [fire_tag, tag]() { fire_tag(tag); }));
        heap.push(RefEntry{now + delay, seq++, tag});
      } else if (op < 80) {
        // Cancel a random still-known id (may already have fired: the
        // wheel must treat that as a no-op, mirrored via the tag list).
        size_t pick = std::uniform_int_distribution<size_t>(0, wheel_ids.size() - 1)(rng);
        uint64_t tag = static_cast<uint64_t>(pick);
        if (wheel.Cancel(wheel_ids[pick])) {
          cancelled.push_back(tag);
        }
      } else {
        // Advance time and drain both models.
        now += delay_dist(rng);
        double at;
        Task task;
        while (wheel.PopDue(now, &at, &task)) {
          task();
        }
      }
    }
    // Final drain.
    now += 1e9;
    double at;
    Task task;
    while (wheel.PopDue(now, &at, &task)) {
      task();
    }

    // Reference firing order: heap order, skipping cancelled tags.
    std::vector<uint64_t> ref_fired;
    std::vector<bool> is_cancelled(next_tag, false);
    for (uint64_t tag : cancelled) {
      is_cancelled[tag] = true;
    }
    while (!heap.empty()) {
      RefEntry e = heap.top();
      heap.pop();
      if (!is_cancelled[e.tag]) {
        ref_fired.push_back(e.tag);
      }
    }
    EXPECT_EQ(wheel_fired, ref_fired) << "round " << round;
    EXPECT_TRUE(wheel.empty());
  }
}

// --- The loop-facing behavior stays what the heap provided -------------

TEST(SimEventLoopOnWheel, ManyTimersScheduleCancelChurn) {
  SimEventLoop loop;
  std::vector<TimerId> ids;
  int fired = 0;
  for (int i = 0; i < 20000; ++i) {
    ids.push_back(loop.ScheduleAfter(1.0 + 0.001 * i, [&fired]() { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    loop.Cancel(ids[i]);
  }
  EXPECT_EQ(loop.pending(), 10000u);
  loop.RunAll();
  EXPECT_EQ(fired, 10000);
}

}  // namespace
}  // namespace p2
