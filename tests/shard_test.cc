// ShardedSim engine mechanics: the deterministic delivery lane, the
// conservative-window coordinator, the control timeline, and bounded
// mailbox backpressure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/sim/shard.h"
#include "src/sim/topology.h"

namespace p2 {
namespace {

SimDelivery Msg(double at, uint64_t src, uint64_t seq, const std::string& tag) {
  SimDelivery d;
  d.at = at;
  d.src = src;
  d.seq = seq;
  d.from = tag;
  d.to = "x";
  return d;
}

TEST(DeliveryLane, OrdersByTimeSourceSequence) {
  SimEventLoop loop;
  std::vector<std::string> order;
  loop.SetDeliverFn([&](const SimDelivery& d) { order.push_back(d.from); });
  // Enqueued out of order on purpose: pop order must follow the key, not
  // insertion.
  loop.EnqueueLocal(Msg(2.0, 1, 0, "t2-s1"));
  loop.EnqueueLocal(Msg(1.0, 9, 5, "t1-s9"));
  loop.EnqueueLocal(Msg(1.0, 2, 7, "t1-s2-q7"));
  loop.EnqueueLocal(Msg(1.0, 2, 3, "t1-s2-q3"));
  loop.RunAll();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "t1-s2-q3");
  EXPECT_EQ(order[1], "t1-s2-q7");
  EXPECT_EQ(order[2], "t1-s9");
  EXPECT_EQ(order[3], "t2-s1");
  EXPECT_DOUBLE_EQ(loop.Now(), 2.0);
  EXPECT_EQ(loop.events_run(), 4u);
}

TEST(DeliveryLane, TimersFireBeforeDeliveriesAtTheSameInstant) {
  SimEventLoop loop;
  std::vector<std::string> order;
  loop.SetDeliverFn([&](const SimDelivery& d) { order.push_back(d.from); });
  loop.EnqueueLocal(Msg(1.0, 0, 0, "delivery"));
  loop.ScheduleAfter(1.0, [&]() { order.push_back("timer"); });
  loop.RunAll();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "timer");
  EXPECT_EQ(order[1], "delivery");
}

TEST(DeliveryLane, WindowExcludesItsEndUnlessInclusive) {
  SimEventLoop loop;
  int fired = 0;
  loop.ScheduleAfter(1.0, [&]() { ++fired; });
  loop.RunWindow(1.0, /*inclusive=*/false);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(loop.Now(), 1.0);
  loop.RunWindow(1.0, /*inclusive=*/true);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedSim, ShardsKnowTheirIndex) {
  ShardedSim sim(3);
  EXPECT_EQ(sim.num_shards(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sim.shard(i)->shard_index(), i);
  }
}

TEST(ShardedSim, TimersRunAcrossWindowsAndAtTheDeadline) {
  ShardedSim sim(2);
  sim.set_sync_window(0.25);
  std::vector<double> fired;
  sim.shard(0)->ScheduleAfter(0.1, [&]() { fired.push_back(0.1); });
  sim.shard(0)->ScheduleAfter(1.0, [&]() { fired.push_back(1.0); });  // == deadline
  sim.RunUntil(1.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.Now(), 1.0);
  // Timers scheduled between runs continue from the barrier.
  sim.shard(1)->ScheduleAfter(0.5, [&]() { fired.push_back(1.5); });
  sim.RunUntil(2.0);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(fired[2], 1.5);
}

TEST(ShardedSim, ControlTasksFireAtExactTimesBeforeShardEvents) {
  ShardedSim sim(2);
  sim.set_sync_window(0.4);  // 1.25 is not a window multiple
  std::vector<std::string> order;
  sim.control()->ScheduleAfter(1.25, [&]() {
    order.push_back("control@" + std::to_string(sim.Now()));
  });
  sim.shard(0)->ScheduleAfter(1.25, [&]() { order.push_back("shard"); });
  sim.RunUntil(2.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "control@1.250000");  // exact, not quantized to 0.4
  EXPECT_EQ(order[1], "shard");             // same instant: control first
}

TEST(ShardedSim, ControlTimelineCancelWorks) {
  ShardedSim sim(1);
  int fired = 0;
  TimerId id = sim.control()->ScheduleAfter(0.5, [&]() { ++fired; });
  sim.control()->Cancel(id);
  sim.RunUntil(1.0);
  EXPECT_EQ(fired, 0);
}

// Two endpoints in different domains land on different shards; a datagram
// between them crosses via the mailbox and arrives after the topology
// latency — never earlier than the conservative window.
TEST(ShardedNetwork, CrossShardDatagramRespectsLatency) {
  ShardedSim sim(2);
  SimNetwork net(&sim, Topology(TopologyConfig{}), 7);
  auto a = net.MakeTransport("a", 0);  // domain 0 -> shard 0
  auto b = net.MakeTransport("b", 1);  // domain 1 -> shard 1
  ASSERT_NE(a->shard(), b->shard());
  double arrived_at = -1;
  std::string from;
  b->SetReceiver([&](const std::string& f, const std::vector<uint8_t>&) {
    arrived_at = sim.shard(1)->Now();
    from = f;
  });
  // Send from a's shard thread via a timer on a's executor.
  sim.shard(0)->ScheduleAfter(0.0, [&]() {
    a->SendTo("b", std::vector<uint8_t>{1, 2, 3}, TrafficClass::kMaintenance);
  });
  sim.RunUntil(1.0);
  EXPECT_EQ(from, "a");
  ASSERT_GE(arrived_at, net.topology().MinCrossDomainLatency());
  EXPECT_LT(arrived_at, 0.2);
  EXPECT_EQ(net.delivered(), 1u);
}

// Flood both directions through tiny bounded mailboxes inside one window:
// blocked senders must relieve pressure by folding their own inbox, so the
// barrier always completes and every datagram arrives.
TEST(ShardedNetwork, BoundedMailboxBackpressureDoesNotDeadlock) {
  constexpr int kMsgs = 500;
  ShardedSim sim(2);
  SimNetwork net(&sim, Topology(TopologyConfig{}), 11);
  auto a = net.MakeTransport("a", 0);
  auto b = net.MakeTransport("b", 1);
  sim.shard(0)->set_mailbox_capacity(4);
  sim.shard(1)->set_mailbox_capacity(4);
  int got_a = 0;
  int got_b = 0;
  a->SetReceiver([&](const std::string&, const std::vector<uint8_t>&) { ++got_a; });
  b->SetReceiver([&](const std::string&, const std::vector<uint8_t>&) { ++got_b; });
  sim.shard(0)->ScheduleAfter(0.0, [&]() {
    for (int i = 0; i < kMsgs; ++i) {
      a->SendTo("b", std::vector<uint8_t>{42}, TrafficClass::kMaintenance);
    }
  });
  sim.shard(1)->ScheduleAfter(0.0, [&]() {
    for (int i = 0; i < kMsgs; ++i) {
      b->SendTo("a", std::vector<uint8_t>{43}, TrafficClass::kMaintenance);
    }
  });
  sim.RunUntil(2.0);
  EXPECT_EQ(got_a, kMsgs);
  EXPECT_EQ(got_b, kMsgs);
}

// A ping-pong fleet spanning every domain must execute the identical event
// total (and per-endpoint delivery counts) at any shard count.
TEST(ShardedNetwork, EventTotalsAreShardCountInvariant) {
  constexpr size_t kEndpoints = 6;
  constexpr int kRounds = 40;
  auto run = [&](size_t shards, std::vector<uint64_t>* delivered) -> uint64_t {
    ShardedSim sim(shards);
    SimNetwork net(&sim, Topology(TopologyConfig{}), 99);
    std::vector<std::unique_ptr<SimTransport>> eps;
    for (size_t i = 0; i < kEndpoints; ++i) {
      eps.push_back(net.MakeTransport("e" + std::to_string(i), i));
    }
    for (size_t i = 0; i < kEndpoints; ++i) {
      SimTransport* self = eps[i].get();
      std::string next = "e" + std::to_string((i + 1) % kEndpoints);
      self->SetReceiver([self, next](const std::string&,
                                     const std::vector<uint8_t>& bytes) {
        if (bytes[0] > 0) {
          std::vector<uint8_t> fwd = bytes;
          --fwd[0];
          self->SendTo(next, std::move(fwd), TrafficClass::kMaintenance);
        }
      });
    }
    sim.shard(0)->ScheduleAfter(0.0, [&]() {
      eps[0]->SendTo("e1", std::vector<uint8_t>{kRounds}, TrafficClass::kLookup);
    });
    sim.RunUntil(60.0);
    for (size_t i = 0; i < kEndpoints; ++i) {
      delivered->push_back(eps[i]->stats().msgs_in);
    }
    return sim.events_run();
  };
  std::vector<uint64_t> d1;
  std::vector<uint64_t> d4;
  uint64_t e1 = run(1, &d1);
  uint64_t e4 = run(4, &d4);
  EXPECT_EQ(e1, e4);
  EXPECT_EQ(d1, d4);
  uint64_t total = 0;
  for (uint64_t d : d1) {
    total += d;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kRounds) + 1);
}

}  // namespace
}  // namespace p2
