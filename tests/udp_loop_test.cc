#include "src/net/udp_loop.h"

#include <gtest/gtest.h>

#include "src/p2/node.h"

namespace p2 {
namespace {

TEST(UdpLoop, TimersFireInOrder) {
  UdpLoop loop;
  std::vector<int> order;
  loop.ScheduleAfter(0.02, [&]() { order.push_back(2); });
  loop.ScheduleAfter(0.01, [&]() { order.push_back(1); });
  TimerId cancelled = loop.ScheduleAfter(0.015, [&]() { order.push_back(99); });
  loop.Cancel(cancelled);
  loop.RunFor(0.1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(UdpLoop, DatagramRoundTrip) {
  UdpLoop loop;
  auto a = loop.MakeTransport(0);
  auto b = loop.MakeTransport(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->local_addr(), b->local_addr());
  std::vector<uint8_t> got;
  std::string got_from;
  b->SetReceiver([&](const std::string& from, const std::vector<uint8_t>& bytes) {
    got = bytes;
    got_from = from;
    loop.Stop();
  });
  a->SendTo(b->local_addr(), {1, 2, 3, 4}, false);
  loop.RunFor(2.0);
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(got_from, a->local_addr());
  EXPECT_EQ(a->stats().msgs_out, 1u);
  EXPECT_EQ(b->stats().msgs_in, 1u);
}

TEST(UdpLoop, BandwidthAccountingIsSymmetric) {
  // kUdpIpHeaderBytes must be counted identically on the send and receive
  // side, so a lossless exchange reports bytes_in == bytes_out.
  UdpLoop loop;
  auto a = loop.MakeTransport(0);
  auto b = loop.MakeTransport(0);
  int got = 0;
  b->SetReceiver([&](const std::string&, const std::vector<uint8_t>&) {
    if (++got == 3) {
      loop.Stop();
    }
  });
  a->SendTo(b->local_addr(), {1, 2, 3}, TrafficClass::kLookup);
  a->SendTo(b->local_addr(), std::vector<uint8_t>(100, 7), TrafficClass::kMaintenance);
  a->SendTo(b->local_addr(), std::vector<uint8_t>(9, 1), TrafficClass::kRetransmit);
  loop.RunFor(2.0);
  ASSERT_EQ(got, 3);
  EXPECT_EQ(b->stats().bytes_in, a->stats().bytes_out);
  EXPECT_EQ(b->stats().msgs_in, a->stats().msgs_out);
  // The per-class split adds up to the total.
  EXPECT_EQ(a->stats().lookup_bytes_out + a->stats().maint_bytes_out +
                a->stats().retx_bytes_out + a->stats().control_bytes_out,
            a->stats().bytes_out);
  EXPECT_EQ(a->stats().retx_bytes_out, 9u + kUdpIpHeaderBytes);
}

TEST(UdpLoop, BadDestinationIsDroppedGracefully) {
  UdpLoop loop;
  auto a = loop.MakeTransport(0);
  a->SendTo("not-an-address", {1}, false);
  a->SendTo("127.0.0.1:0", {1}, false);
  loop.RunFor(0.05);  // nothing should crash
}

TEST(UdpLoop, OversizeDatagramCountedNotSent) {
  UdpLoop loop;
  auto a = loop.MakeTransport(0);
  auto b = loop.MakeTransport(0);
  // 256 KiB exceeds the 64 KiB UDP datagram limit: the kernel refuses with
  // EMSGSIZE. The failure must be counted, and must stay out of the
  // evaluation's bandwidth figures (nothing reached the wire).
  std::vector<uint8_t> huge(256 * 1024, 0x5A);
  a->SendTo(b->local_addr(), std::move(huge), false);
  EXPECT_EQ(a->send_failures().oversize, 1u);
  EXPECT_EQ(a->send_failures().total(), 1u);
  EXPECT_EQ(a->stats().msgs_out, 0u);
  EXPECT_EQ(a->stats().bytes_out, 0u);
  // A normal datagram afterwards goes through and is accounted.
  a->SendTo(b->local_addr(), {1, 2, 3}, false);
  EXPECT_EQ(a->stats().msgs_out, 1u);
  EXPECT_EQ(a->send_failures().total(), 1u);
}

// The same P2 node code that runs under the simulator runs over real
// sockets: a two-node OverLog ping-pong through the kernel's UDP stack.
TEST(UdpLoop, P2NodesOverRealSockets) {
  UdpLoop loop;
  auto ta = loop.MakeTransport(0);
  auto tb = loop.MakeTransport(0);
  const std::string program =
      "p1 pong@Y(Y,X) :- ping@X(X,Y).\n"
      "p2 ack@X(X,Y) :- pong@Y(Y,X).\n";
  P2NodeConfig ca;
  ca.executor = &loop;
  ca.transport = ta.get();
  ca.seed = 1;
  P2NodeConfig cb;
  cb.executor = &loop;
  cb.transport = tb.get();
  cb.seed = 2;
  P2Node na(ca);
  P2Node nb(cb);
  std::string err;
  ASSERT_TRUE(na.Install(program, &err)) << err;
  ASSERT_TRUE(nb.Install(program, &err)) << err;
  na.Start();
  nb.Start();
  int acks = 0;
  na.Subscribe("ack", [&](const TuplePtr&) {
    ++acks;
    loop.Stop();
  });
  na.Inject(Tuple::Make(
      "ping", {Value::Addr(ta->local_addr()), Value::Addr(tb->local_addr())}));
  loop.RunFor(3.0);
  EXPECT_EQ(acks, 1);
}

}  // namespace
}  // namespace p2
