// Reliable transport stack: frame codec bounds checking, bounded send
// queue, AIMD window dynamics, and ReliableChannel end-to-end behavior
// over the deterministic simulator (loss recovery, exactly-once delivery,
// epoch restarts, retry expiry, queue backpressure, interop passthrough).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/net/stack/aimd.h"
#include "src/net/stack/frame.h"
#include "src/net/wire.h"
#include "src/net/stack/reliable_channel.h"
#include "src/net/stack/send_queue.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

// --- Frame codec -----------------------------------------------------------

TEST(StackFrame, DataWithPiggybackRoundTrips) {
  StackFrame f;
  f.has_data = true;
  f.has_ack = true;
  f.epoch = 0xDEADBEEF;
  f.seq = 42;
  f.ack_epoch = 0xCAFEF00D;
  f.cum_ack = 17;
  f.sack_bits = 0b1011;
  f.payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes = EncodeStackFrame(f);
  EXPECT_EQ(bytes.size(), kStackHeaderBytes + 5);
  EXPECT_TRUE(LooksLikeStackFrame(bytes));

  std::optional<StackFrame> d = DecodeStackFrame(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->has_data);
  EXPECT_TRUE(d->has_ack);
  EXPECT_EQ(d->epoch, 0xDEADBEEFu);
  EXPECT_EQ(d->seq, 42u);
  EXPECT_EQ(d->ack_epoch, 0xCAFEF00Du);
  EXPECT_EQ(d->cum_ack, 17u);
  EXPECT_EQ(d->sack_bits, 0b1011u);
  EXPECT_EQ(d->payload, f.payload);
}

TEST(StackFrame, PureAckRoundTrips) {
  StackFrame f;
  f.has_ack = true;
  f.epoch = 7;
  f.ack_epoch = 9;
  f.cum_ack = 100;
  std::vector<uint8_t> bytes = EncodeStackFrame(f);
  EXPECT_EQ(bytes.size(), kStackHeaderBytes);
  std::optional<StackFrame> d = DecodeStackFrame(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->has_data);
  EXPECT_TRUE(d->has_ack);
  EXPECT_TRUE(d->payload.empty());
}

TEST(StackFrame, EmptyPayloadDataFrame) {
  StackFrame f;
  f.has_data = true;
  f.epoch = 1;
  f.seq = 1;
  std::optional<StackFrame> d = DecodeStackFrame(EncodeStackFrame(f));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->has_data);
  EXPECT_TRUE(d->payload.empty());
}

// Recomputes the header checksum (bytes 2..5, covering everything after it)
// so a deliberate field mutation exercises its own rejection path instead of
// tripping the integrity check first.
void ResealChecksum(std::vector<uint8_t>& bytes) {
  uint32_t sum = WireChecksum(bytes.data() + 6, bytes.size() - 6);
  bytes[2] = static_cast<uint8_t>(sum);
  bytes[3] = static_cast<uint8_t>(sum >> 8);
  bytes[4] = static_cast<uint8_t>(sum >> 16);
  bytes[5] = static_cast<uint8_t>(sum >> 24);
}

TEST(StackFrame, MalformedInputRejected) {
  StackFrame f;
  f.has_data = true;
  f.has_ack = true;
  f.epoch = 1;
  f.seq = 1;
  f.payload = {9, 9};
  std::vector<uint8_t> good = EncodeStackFrame(f);

  // Truncations at every prefix length of the header must be rejected.
  for (size_t n = 0; n < kStackHeaderBytes; ++n) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + n);
    EXPECT_FALSE(DecodeStackFrame(cut).has_value()) << "prefix " << n;
  }

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] = 0xD2;
  EXPECT_FALSE(DecodeStackFrame(bad_magic).has_value());

  std::vector<uint8_t> bad_version = good;
  bad_version[1] = 0x7F;
  EXPECT_FALSE(DecodeStackFrame(bad_version).has_value());

  // A damaged checksum alone must sink the frame.
  std::vector<uint8_t> bad_checksum = good;
  bad_checksum[2] ^= 0xFF;
  EXPECT_FALSE(DecodeStackFrame(bad_checksum).has_value());

  std::vector<uint8_t> unknown_flags = good;
  unknown_flags[6] = 0x80 | unknown_flags[6];
  ResealChecksum(unknown_flags);
  EXPECT_FALSE(DecodeStackFrame(unknown_flags).has_value());

  std::vector<uint8_t> no_flags = good;
  no_flags[6] = 0;
  ResealChecksum(no_flags);
  EXPECT_FALSE(DecodeStackFrame(no_flags).has_value());

  // A pure ACK with trailing bytes is garbage, not a payload.
  StackFrame ack;
  ack.has_ack = true;
  std::vector<uint8_t> trailing = EncodeStackFrame(ack);
  trailing.push_back(0x55);
  ResealChecksum(trailing);
  EXPECT_FALSE(DecodeStackFrame(trailing).has_value());

  EXPECT_FALSE(DecodeStackFrame({}).has_value());
  EXPECT_FALSE(LooksLikeStackFrame({}));
  EXPECT_FALSE(LooksLikeStackFrame({0xD2, 0x01}));
}

// --- SendQueue -------------------------------------------------------------

TEST(SendQueue, FifoWithBoundAndDropCounters) {
  SendQueue q(2);
  EXPECT_TRUE(q.Push({{1}, TrafficClass::kLookup}));
  EXPECT_TRUE(q.Push({{2}, TrafficClass::kMaintenance}));
  EXPECT_FALSE(q.Push({{3}, TrafficClass::kMaintenance}));  // overflow
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_watermark(), 2u);

  auto a = q.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->payload, std::vector<uint8_t>{1});
  EXPECT_EQ(a->cls, TrafficClass::kLookup);
  auto b = q.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->payload, std::vector<uint8_t>{2});
  EXPECT_FALSE(q.Pop().has_value());
  // Draining frees capacity again.
  EXPECT_TRUE(q.Push({{4}, TrafficClass::kMaintenance}));
  EXPECT_EQ(q.high_watermark(), 2u);
}

// --- AIMD ------------------------------------------------------------------

TEST(Aimd, AdditiveIncreaseMultiplicativeDecrease) {
  AimdConfig cfg;
  cfg.initial_window = 4.0;
  AimdWindow w(cfg);
  EXPECT_EQ(w.Allowance(), 4u);
  w.OnAck();
  EXPECT_NEAR(w.window(), 4.25, 1e-9);
  w.OnLoss();
  EXPECT_NEAR(w.window(), 2.125, 1e-9);
  EXPECT_EQ(w.losses(), 1u);
}

TEST(Aimd, WindowStaysWithinBounds) {
  AimdConfig cfg;
  cfg.initial_window = 2.0;
  cfg.min_window = 1.0;
  cfg.max_window = 8.0;
  AimdWindow w(cfg);
  for (int i = 0; i < 1000; ++i) {
    w.OnAck();
  }
  EXPECT_DOUBLE_EQ(w.window(), 8.0);
  for (int i = 0; i < 50; ++i) {
    w.OnLoss();
  }
  EXPECT_DOUBLE_EQ(w.window(), 1.0);
  EXPECT_GE(w.Allowance(), 1u);
}

// --- ReliableChannel over the simulator ------------------------------------

class ReliableChannelTest : public ::testing::Test {
 protected:
  ReliableChannelTest() : net_(&loop_, Topology(TopologyConfig{}), 42) {}

  void MakeEndpoints(ReliableConfig cfg = ReliableConfig{}) {
    ta_ = net_.MakeTransport("a", 0);
    tb_ = net_.MakeTransport("b", 1);
    ca_ = std::make_unique<ReliableChannel>(ta_.get(), &loop_, cfg, 1);
    cb_ = std::make_unique<ReliableChannel>(tb_.get(), &loop_, cfg, 2);
    cb_->SetReceiver([this](const std::string& from, const std::vector<uint8_t>& bytes) {
      (void)from;
      received_.push_back(bytes);
    });
  }

  SimEventLoop loop_;
  SimNetwork net_;
  std::unique_ptr<SimTransport> ta_, tb_;
  std::unique_ptr<ReliableChannel> ca_, cb_;
  std::vector<std::vector<uint8_t>> received_;
};

TEST_F(ReliableChannelTest, LosslessDeliveryWithAcks) {
  MakeEndpoints();
  ca_->SendTo("b", {10, 20, 30}, TrafficClass::kLookup);
  loop_.RunUntil(5.0);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], (std::vector<uint8_t>{10, 20, 30}));

  ReliableChannelStats sa = ca_->Stats();
  EXPECT_EQ(sa.data_frames_sent, 1u);
  EXPECT_EQ(sa.retransmits, 0u);
  EXPECT_EQ(sa.acks_received, 1u);
  EXPECT_EQ(sa.rtt_samples, 1u);
  EXPECT_GT(sa.MeanSrttS(), 0.0);
  EXPECT_GT(sa.MeanCwnd(), 0.0);
  EXPECT_EQ(cb_->Stats().acks_sent, 1u);

  // Wire accounting: first transmission under the caller's class, the pure
  // ACK from b under control; nothing retransmitted.
  EXPECT_GT(ta_->stats().lookup_bytes_out, 0u);
  EXPECT_EQ(ta_->stats().retx_bytes_out, 0u);
  EXPECT_GT(tb_->stats().control_bytes_out, 0u);
}

TEST_F(ReliableChannelTest, TwentyPercentLossDeliversEverythingExactlyOnce) {
  net_.set_loss_rate(0.2);
  MakeEndpoints();
  constexpr int kPayloads = 100;
  for (int i = 0; i < kPayloads; ++i) {
    loop_.ScheduleAfter(0.05 * i, [this, i]() {
      ca_->SendTo("b", {static_cast<uint8_t>(i)}, TrafficClass::kMaintenance);
    });
  }
  loop_.RunUntil(0.05 * kPayloads + 120.0);

  ASSERT_EQ(received_.size(), static_cast<size_t>(kPayloads));
  std::set<uint8_t> unique;
  for (const auto& p : received_) {
    ASSERT_EQ(p.size(), 1u);
    unique.insert(p[0]);
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kPayloads));  // no dup delivery

  ReliableChannelStats sa = ca_->Stats();
  EXPECT_GT(sa.retransmits, 0u);
  EXPECT_GT(sa.timeouts, 0u);
  EXPECT_GT(sa.rtt_samples, 0u);
  EXPECT_GT(ta_->stats().retx_bytes_out, 0u);
  EXPECT_EQ(sa.expired, 0u);  // nothing should give up at this loss rate
}

TEST_F(ReliableChannelTest, WindowOverflowGoesToQueueThenDrops) {
  ReliableConfig cfg;
  cfg.send_queue_capacity = 4;
  MakeEndpoints(cfg);
  // Initial AIMD allowance is 4 in-flight; 4 more queue; the rest drop.
  for (int i = 0; i < 12; ++i) {
    ca_->SendTo("b", {static_cast<uint8_t>(i)}, TrafficClass::kMaintenance);
  }
  ReliableChannelStats sa = ca_->Stats();
  EXPECT_EQ(sa.queue_drops, 4u);
  EXPECT_EQ(sa.queue_high_watermark, 4u);

  // ACKs open the window and drain the queue: the 8 admitted frames land.
  loop_.RunUntil(30.0);
  EXPECT_EQ(received_.size(), 8u);
  EXPECT_EQ(ca_->Stats().queue_drops, 4u);
}

TEST_F(ReliableChannelTest, FramesToDeadPeerExpireAfterMaxRetries) {
  ReliableConfig cfg;
  cfg.max_retries = 3;
  cfg.rtt.initial_rto_s = 0.5;
  cfg.rtt.max_rto_s = 1.0;
  MakeEndpoints(cfg);
  ca_->SendTo("nowhere", {1}, TrafficClass::kMaintenance);
  loop_.RunUntil(60.0);
  ReliableChannelStats sa = ca_->Stats();
  EXPECT_EQ(sa.expired, 1u);
  EXPECT_EQ(sa.retransmits, 3u);
  EXPECT_GT(sa.timeouts, 0u);
}

TEST_F(ReliableChannelTest, PlainDatagramsPassThroughToReceiver) {
  MakeEndpoints();
  // A best-effort peer (no stack) sends a raw datagram to b.
  auto tc = net_.MakeTransport("c", 2);
  tc->SendTo("b", {0xD2, 0x01, 0x99}, TrafficClass::kMaintenance);
  loop_.RunUntil(2.0);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], (std::vector<uint8_t>{0xD2, 0x01, 0x99}));
  // No reliability state materialized for the raw sender.
  EXPECT_EQ(cb_->Stats().acks_sent, 0u);
}

TEST_F(ReliableChannelTest, EpochRestartIsNotMistakenForDuplicates) {
  MakeEndpoints();
  ca_->SendTo("b", {1}, TrafficClass::kMaintenance);
  ca_->SendTo("b", {2}, TrafficClass::kMaintenance);
  loop_.RunUntil(5.0);
  ASSERT_EQ(received_.size(), 2u);

  // Endpoint a restarts: same address, fresh channel incarnation whose
  // sequence space starts over at 1.
  ca_.reset();
  ta_.reset();
  ta_ = net_.MakeTransport("a", 0);
  ca_ = std::make_unique<ReliableChannel>(ta_.get(), &loop_, ReliableConfig{}, 99);
  ca_->SendTo("b", {3}, TrafficClass::kMaintenance);
  ca_->SendTo("b", {4}, TrafficClass::kMaintenance);
  loop_.RunUntil(10.0);
  ASSERT_EQ(received_.size(), 4u);
  EXPECT_EQ(received_[2], (std::vector<uint8_t>{3}));
  EXPECT_EQ(received_[3], (std::vector<uint8_t>{4}));
  EXPECT_EQ(cb_->Stats().duplicates_received, 0u);
}

TEST_F(ReliableChannelTest, ExpiredFrameDoesNotPinReceiverCumAck) {
  ReliableConfig cfg;
  cfg.max_retries = 2;
  cfg.rtt.initial_rto_s = 0.5;
  cfg.rtt.max_rto_s = 1.0;
  MakeEndpoints(cfg);
  // Establish a stream well past the 32-entry SACK window.
  for (int i = 0; i < 40; ++i) {
    loop_.ScheduleAfter(0.05 * i, [this, i]() {
      ca_->SendTo("b", {static_cast<uint8_t>(i)}, TrafficClass::kMaintenance);
    });
  }
  loop_.RunUntil(20.0);
  ASSERT_EQ(received_.size(), 40u);

  // A total outage long enough for one frame to exhaust its retries. The
  // receiver stays alive, so abandoning the sequence number must not leave
  // a permanent hole below its cumulative ack.
  net_.set_loss_rate(1.0);
  ca_->SendTo("b", {200}, TrafficClass::kMaintenance);
  loop_.RunUntil(35.0);
  EXPECT_EQ(ca_->Stats().expired, 1u);
  EXPECT_GE(ca_->Stats().stream_resets, 1u);

  // Connectivity recovers: post-outage sends deliver and are acked.
  net_.set_loss_rate(0.0);
  for (int i = 0; i < 5; ++i) {
    ca_->SendTo("b", {static_cast<uint8_t>(210 + i)}, TrafficClass::kMaintenance);
  }
  loop_.RunUntil(60.0);
  ASSERT_EQ(received_.size(), 45u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(received_[40 + i], (std::vector<uint8_t>{static_cast<uint8_t>(210 + i)}));
  }
  EXPECT_EQ(ca_->Stats().expired, 1u);  // nothing further gave up
}

TEST_F(ReliableChannelTest, ReceiverRestartTriggersStreamResetNotBlackhole) {
  MakeEndpoints();
  // Push the stream well past the 32-entry SACK window so a fresh receiver
  // cannot selectively ack continuing sequence numbers.
  for (int i = 0; i < 50; ++i) {
    loop_.ScheduleAfter(0.05 * i, [this, i]() {
      ca_->SendTo("b", {static_cast<uint8_t>(i)}, TrafficClass::kMaintenance);
    });
  }
  loop_.RunUntil(20.0);
  ASSERT_EQ(received_.size(), 50u);

  // b restarts at the same address (churn replacement): empty receive
  // state, while a continues its old numbering.
  cb_.reset();
  tb_.reset();
  tb_ = net_.MakeTransport("b", 1);
  cb_ = std::make_unique<ReliableChannel>(tb_.get(), &loop_, ReliableConfig{}, 77);
  std::vector<std::vector<uint8_t>> received2;
  cb_->SetReceiver([&](const std::string&, const std::vector<uint8_t>& bytes) {
    received2.push_back(bytes);
  });
  for (int i = 0; i < 10; ++i) {
    ca_->SendTo("b", {static_cast<uint8_t>(100 + i)}, TrafficClass::kMaintenance);
  }
  loop_.RunUntil(60.0);

  // Every post-restart payload arrives (the cum-ACK regression makes a
  // renumber its stream). The restart boundary may redeliver in-flight
  // frames once — at-least-once across incarnations, never a blackhole.
  std::set<uint8_t> unique;
  for (const auto& p : received2) {
    ASSERT_EQ(p.size(), 1u);
    unique.insert(p[0]);
  }
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_LE(received2.size(), 20u);
  ReliableChannelStats sa = ca_->Stats();
  EXPECT_EQ(sa.stream_resets, 1u);
  EXPECT_EQ(sa.expired, 0u);
  // The new incarnation's ACK state converged: nothing left in flight, so
  // a further send goes straight through.
  received2.clear();
  ca_->SendTo("b", {0xFF}, TrafficClass::kMaintenance);
  loop_.RunUntil(65.0);
  ASSERT_EQ(received2.size(), 1u);
  EXPECT_EQ(ca_->Stats().stream_resets, 1u);
}

TEST_F(ReliableChannelTest, RequestResponseTrafficPiggybacksAcks) {
  MakeEndpoints();
  // b answers every request immediately, inside the receive handler — the
  // response frame must carry the ACK, replacing the delayed pure ACK.
  cb_->SetReceiver([this](const std::string& from, const std::vector<uint8_t>& bytes) {
    received_.push_back(bytes);
    cb_->SendTo(from, {0xAA}, TrafficClass::kMaintenance);
  });
  std::vector<std::vector<uint8_t>> responses;
  ca_->SetReceiver([&](const std::string&, const std::vector<uint8_t>& bytes) {
    responses.push_back(bytes);
  });
  for (int round = 0; round < 20; ++round) {
    loop_.ScheduleAfter(0.5 * round, [this, round]() {
      ca_->SendTo("b", {static_cast<uint8_t>(round)}, TrafficClass::kLookup);
    });
  }
  loop_.RunUntil(30.0);
  EXPECT_EQ(received_.size(), 20u);
  EXPECT_EQ(responses.size(), 20u);
  // b never needed a pure ACK frame; a (whose reverse direction is idle
  // when the response lands) acked them with delayed pure ACKs.
  EXPECT_EQ(cb_->Stats().acks_sent, 0u);
  EXPECT_GE(ca_->Stats().acks_received, 20u);
  EXPECT_EQ(tb_->stats().control_bytes_out, 0u);
  EXPECT_GT(ta_->stats().control_bytes_out, 0u);
}

}  // namespace
}  // namespace p2
