// Property-based tests: randomized sweeps checking invariants of the
// runtime substrates against reference models.
#include <gtest/gtest.h>

#include <map>

#include "src/overlog/compile_expr.h"
#include "src/overlog/parser.h"
#include "src/pel/vm.h"
#include "src/runtime/marshal.h"
#include "src/runtime/random.h"
#include "src/sim/event_loop.h"
#include "src/table/table.h"

namespace p2 {
namespace {

// --- Uint160 vs a 64-bit reference model (operations that stay small) ---

class SmallRingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmallRingProperty, MatchesUint64Reference) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.NextU64() >> 1;  // keep clear of the 64-bit wrap
    uint64_t b = rng.NextU64() >> 1;
    Uint160 A(a);
    Uint160 B(b);
    EXPECT_EQ((A + B).Low64(), a + b);
    EXPECT_EQ((A - B).Low64(), a - b);  // same wrap behaviour in low limb
    EXPECT_EQ(A < B, a < b);
    unsigned sh = static_cast<unsigned>(rng.NextBelow(32));
    EXPECT_EQ((A << sh).Low64() & 0x7FFFFFFFFFFFFFFFull,
              (a << sh) & 0x7FFFFFFFFFFFFFFFull);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallRingProperty, ::testing::Values(3u, 5u, 8u, 13u));

// --- Marshal round-trip over random tuples; fuzz over corrupted bytes ---

Value RandomValue(Rng* rng, int depth) {
  switch (rng->NextBelow(depth > 0 ? 8 : 7)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->CoinFlip(0.5));
    case 2:
      return Value::Int(static_cast<int64_t>(rng->NextU64()));
    case 3:
      return Value::Double(rng->NextDouble() * 1e6 - 5e5);
    case 4: {
      std::string s;
      for (uint64_t n = rng->NextBelow(20); n > 0; --n) {
        s.push_back(static_cast<char>('a' + rng->NextBelow(26)));
      }
      return Value::Str(std::move(s));
    }
    case 5:
      return Value::Id(rng->NextId());
    case 6:
      return Value::Addr("h" + std::to_string(rng->NextBelow(1000)));
    default: {
      ValueList items;
      for (uint64_t n = rng->NextBelow(4); n > 0; --n) {
        items.push_back(RandomValue(rng, depth - 1));
      }
      return Value::List(std::move(items));
    }
  }
}

class MarshalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarshalProperty, RandomTuplesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> fields;
    for (uint64_t n = rng.NextBelow(8); n > 0; --n) {
      fields.push_back(RandomValue(&rng, 2));
    }
    TuplePtr t = Tuple::Make("t" + std::to_string(i % 7), std::move(fields));
    std::optional<TuplePtr> back = UnmarshalTupleFromBytes(MarshalTupleToBytes(*t));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE((*back)->SameAs(*t));
  }
}

TEST_P(MarshalProperty, CorruptedBytesNeverCrash) {
  Rng rng(GetParam() ^ 0xF00D);
  std::vector<Value> fields;
  for (int i = 0; i < 5; ++i) {
    fields.push_back(RandomValue(&rng, 2));
  }
  std::vector<uint8_t> bytes = MarshalTupleToBytes(Tuple("t", fields));
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    // Flip up to 4 random bytes and/or truncate.
    for (uint64_t flips = 1 + rng.NextBelow(4); flips > 0; --flips) {
      mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(rng.NextU64());
    }
    if (rng.CoinFlip(0.3)) {
      mutated.resize(rng.NextBelow(mutated.size() + 1));
    }
    // Must either parse into some tuple or fail cleanly; never crash.
    std::optional<TuplePtr> result = UnmarshalTupleFromBytes(mutated);
    if (result.has_value()) {
      EXPECT_LE((*result)->size(), 65535u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalProperty, ::testing::Values(11u, 22u, 33u));

// --- Table vs a map-based reference model ---

class TableProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableProperty, RandomOpsMatchReferenceModel) {
  SimEventLoop loop;
  TableSpec spec;
  spec.name = "t";
  spec.key_positions = {0};
  spec.max_size = 16;
  spec.lifetime_s = 50.0;
  Table table(spec, &loop);

  struct Ref {
    int64_t value;
    double expires;
    uint64_t order;  // refresh order for FIFO eviction
  };
  std::map<int64_t, Ref> model;
  uint64_t order = 0;
  Rng rng(GetParam());

  auto purge_model = [&]() {
    for (auto it = model.begin(); it != model.end();) {
      if (it->second.expires <= loop.Now()) {
        it = model.erase(it);
      } else {
        ++it;
      }
    }
  };
  auto evict_model = [&]() {
    while (model.size() > spec.max_size) {
      auto oldest = model.begin();
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->second.order < oldest->second.order) {
          oldest = it;
        }
      }
      model.erase(oldest);
    }
  };

  for (int step = 0; step < 2000; ++step) {
    int64_t key = static_cast<int64_t>(rng.NextBelow(24));
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // insert
        int64_t value = static_cast<int64_t>(rng.NextBelow(100));
        table.Insert(Tuple::Make("t", {Value::Int(key), Value::Int(value)}));
        purge_model();
        model[key] = Ref{value, loop.Now() + spec.lifetime_s, order++};
        evict_model();
        break;
      }
      case 2: {  // delete
        bool removed = table.DeleteByKey({Value::Int(key)});
        purge_model();
        EXPECT_EQ(removed, model.erase(key) > 0);
        break;
      }
      case 3: {  // advance time
        loop.RunUntil(loop.Now() + rng.NextDouble() * 10.0);
        break;
      }
    }
    // Compare lookup results on a random key.
    purge_model();
    TuplePtr found = table.FindByKey({Value::Int(key)});
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_EQ(found, nullptr) << "step " << step;
    } else {
      ASSERT_NE(found, nullptr) << "step " << step;
      EXPECT_EQ(found->field(1).AsInt(), it->second.value) << "step " << step;
    }
    EXPECT_EQ(table.size(), model.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableProperty, ::testing::Values(7u, 19u, 31u));

// --- Parser/printer round-trip property over the bundled overlays ---

TEST(ParserProperty, PrintedRulesReparseIdentically) {
  // Parse a program, print every rule, re-parse, and compare structure.
  const char* kProgram =
      "materialize(succ, 10, 100, keys(2)).\n"
      "L1 res@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E), succ@NI(NI,S,SI), "
      "K in (N,S].\n"
      "L2 d@NI(NI,K,min<D>) :- lookup@NI(NI,K), finger@NI(NI,I,B,BI), D := K - B - 1, "
      "B in (N,K).\n"
      "S1 c@NI(NI,count<*>) :- succ@NI(NI,S,SI).\n"
      "F8 n@NI(NI,0) :- e@NI(NI,I,B,BI), ((I == 159) || (BI == NI)).\n"
      "L3 delete succ@NI(NI,S) :- dead@NI(NI,S).\n";
  ProgramAst first;
  std::string err;
  ASSERT_TRUE(ParseOverLog(kProgram, &first, &err)) << err;
  for (const RuleAst& rule : first.rules) {
    std::string printed = RuleToString(rule);
    ProgramAst again;
    ASSERT_TRUE(ParseOverLog(printed, &again, &err)) << printed << "\n" << err;
    ASSERT_EQ(again.rules.size(), 1u);
    EXPECT_EQ(RuleToString(again.rules[0]), printed);
  }
}

// --- PEL compilation matches direct expression evaluation ---

TEST(CompileProperty, ArithmeticExpressionsEvaluateCorrectly) {
  // Random integer expression trees compiled through the OverLog expression
  // compiler must match a direct recursive evaluation.
  SimEventLoop loop;
  Rng rng(77);
  std::string addr = "n0";
  PelVm vm(PelEnv{&loop, &rng, &addr});

  struct Node {
    char op;  // 0 = leaf
    int64_t leaf;
    std::unique_ptr<Node> l, r;
  };
  std::function<std::unique_ptr<Node>(int)> gen = [&](int depth) {
    auto n = std::make_unique<Node>();
    if (depth == 0 || rng.CoinFlip(0.3)) {
      n->op = 0;
      n->leaf = static_cast<int64_t>(rng.NextBelow(100)) - 50;
      return n;
    }
    const char ops[] = {'+', '-', '*'};
    n->op = ops[rng.NextBelow(3)];
    n->l = gen(depth - 1);
    n->r = gen(depth - 1);
    return n;
  };
  std::function<ExprPtr(const Node&)> to_expr = [&](const Node& n) -> ExprPtr {
    if (n.op == 0) {
      return Expr::Const(Value::Int(n.leaf));
    }
    return Expr::Binary(std::string(1, n.op), to_expr(*n.l), to_expr(*n.r));
  };
  std::function<int64_t(const Node&)> eval = [&](const Node& n) -> int64_t {
    if (n.op == 0) {
      return n.leaf;
    }
    int64_t a = eval(*n.l);
    int64_t b = eval(*n.r);
    return n.op == '+' ? a + b : (n.op == '-' ? a - b : a * b);
  };

  for (int i = 0; i < 300; ++i) {
    std::unique_ptr<Node> tree = gen(4);
    PelProgram prog;
    std::string err;
    VarEnv env;
    ASSERT_TRUE(CompileExpr(*to_expr(*tree), env, &prog, &err)) << err;
    EXPECT_EQ(vm.Eval(prog, nullptr).AsInt(), eval(*tree));
  }
}

}  // namespace
}  // namespace p2
