// Semi-naive planner and incremental-aggregate unit tests.
//
// Pins the delta semantics the PR-6 planner introduced: pure-table rules
// fire from EVERY materialized body predicate (not just the first), safe
// remove chains retract derived rows when a support is deleted or evicted
// (but not when it merely expires — soft state ages out on its own TTL),
// unsafe projections fall back to TTL decay instead of over-deleting, and
// the incremental table-aggregate watcher tracks count/sum/avg in O(1)
// and min/max through a support multiset, queueing re-entrant deltas.
#include <gtest/gtest.h>

#include "src/dataflow/rel_elements.h"
#include "src/p2/node.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

class SemiNaiveTest : public ::testing::Test {
 protected:
  SemiNaiveTest() : net_(&loop_, Topology(TopologyConfig{}), 17) {
    t1_ = net_.MakeTransport("n1", 0);
  }

  std::unique_ptr<P2Node> Install(const std::string& program,
                                  PlannerMode mode = PlannerMode::kSemiNaive) {
    P2NodeConfig c;
    c.executor = &loop_;
    c.transport = t1_.get();
    c.seed = 1;
    c.planner_mode = mode;
    auto node = std::make_unique<P2Node>(c);
    std::string err;
    EXPECT_TRUE(node->Install(program, &err)) << err;
    return node;
  }

  SimEventLoop loop_;
  SimNetwork net_;
  std::unique_ptr<SimTransport> t1_;
};

// --- Multi-delta triggers -------------------------------------------------

TEST_F(SemiNaiveTest, PureTableRuleFiresFromEveryBodyPredicate) {
  const std::string program =
      "materialize(a, infinity, 100, keys(2)).\n"
      "materialize(b, infinity, 100, keys(2)).\n"
      "materialize(h, infinity, 100, keys(2)).\n"
      "r1 h@X(X,K,V) :- a@X(X,K), b@X(X,K,V).\n";
  auto n = Install(program);
  n->Start();
  // a first, then b: only a delta-insert(b) trigger can derive this h row.
  n->GetTable("a")->Insert(Tuple::Make("a", {Value::Addr("n1"), Value::Int(1)}));
  n->GetTable("b")->Insert(
      Tuple::Make("b", {Value::Addr("n1"), Value::Int(1), Value::Str("x")}));
  // b first, then a: the mirror case needs the delta-insert(a) trigger.
  n->GetTable("b")->Insert(
      Tuple::Make("b", {Value::Addr("n1"), Value::Int(2), Value::Str("y")}));
  n->GetTable("a")->Insert(Tuple::Make("a", {Value::Addr("n1"), Value::Int(2)}));
  loop_.RunUntil(1.0);
  Table* h = n->GetTable("h");
  EXPECT_EQ(h->size(), 2u);
  EXPECT_NE(h->FindByKey({Value::Int(1)}), nullptr);
  EXPECT_NE(h->FindByKey({Value::Int(2)}), nullptr);
}

TEST_F(SemiNaiveTest, LegacyModeOnlyTriggersOnFirstPredicate) {
  const std::string program =
      "materialize(a, infinity, 100, keys(2)).\n"
      "materialize(b, infinity, 100, keys(2)).\n"
      "materialize(h, infinity, 100, keys(2)).\n"
      "r1 h@X(X,K,V) :- a@X(X,K), b@X(X,K,V).\n";
  auto n = Install(program, PlannerMode::kLegacy);
  n->Start();
  // a then b: the legacy single trigger (first predicate) misses this.
  n->GetTable("a")->Insert(Tuple::Make("a", {Value::Addr("n1"), Value::Int(1)}));
  n->GetTable("b")->Insert(
      Tuple::Make("b", {Value::Addr("n1"), Value::Int(1), Value::Str("x")}));
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->GetTable("h")->size(), 0u);  // the gap semi-naive closes
}

// --- Remove chains --------------------------------------------------------

TEST_F(SemiNaiveTest, DeleteRetractsDerivedRow) {
  const std::string program =
      "materialize(a, infinity, 100, keys(2)).\n"
      "materialize(b, infinity, 100, keys(2)).\n"
      "materialize(h, infinity, 100, keys(2)).\n"
      "r1 h@X(X,K,V) :- a@X(X,K), b@X(X,K,V).\n";
  auto n = Install(program);
  n->Start();
  n->GetTable("a")->Insert(Tuple::Make("a", {Value::Addr("n1"), Value::Int(1)}));
  n->GetTable("b")->Insert(
      Tuple::Make("b", {Value::Addr("n1"), Value::Int(1), Value::Str("x")}));
  ASSERT_EQ(n->GetTable("h")->size(), 1u);
  // Retracting either support un-derives h (all body vars appear in the
  // head, so the remove chain is provably safe).
  n->GetTable("a")->DeleteByKey({Value::Int(1)});
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->GetTable("h")->size(), 0u);
}

TEST_F(SemiNaiveTest, EvictionRetractsDerivedRow) {
  const std::string program =
      "materialize(a, infinity, 2, keys(2)).\n"  // capacity 2: FIFO evicts
      "materialize(h, infinity, 100, keys(2)).\n"
      "r1 h@X(X,K) :- a@X(X,K).\n";
  auto n = Install(program);
  n->Start();
  for (int k = 1; k <= 3; ++k) {
    n->GetTable("a")->Insert(Tuple::Make("a", {Value::Addr("n1"), Value::Int(k)}));
  }
  loop_.RunUntil(1.0);
  // k=1 was evicted; its derived row went with it.
  EXPECT_EQ(n->GetTable("a")->size(), 2u);
  EXPECT_EQ(n->GetTable("h")->size(), 2u);
  EXPECT_EQ(n->GetTable("h")->FindByKey({Value::Int(1)}), nullptr);
}

TEST_F(SemiNaiveTest, ExpiryDoesNotRetractDerivedRow) {
  // Soft-state refresh noise: a TTL'd support expiring is not a retraction
  // (the Chord ping cycle depends on derived state outliving one refresh
  // gap). Derived rows age out on their own TTL instead.
  const std::string program =
      "materialize(a, 1, 100, keys(2)).\n"
      "materialize(h, infinity, 100, keys(2)).\n"
      "r1 h@X(X,K) :- a@X(X,K).\n";
  auto n = Install(program);
  n->Start();
  n->GetTable("a")->Insert(Tuple::Make("a", {Value::Addr("n1"), Value::Int(1)}));
  loop_.RunUntil(3.0);  // well past a's 1s lifetime
  EXPECT_EQ(n->GetTable("a")->size(), 0u);
  EXPECT_EQ(n->GetTable("h")->size(), 1u);
}

TEST_F(SemiNaiveTest, ProjectedSupportGetsNoRemoveChain) {
  // h projects S away, so one h row can have many derivations; deleting a
  // single support must NOT kill it (the planner proves this rule unsafe
  // and emits no remove chain — Chord's pingNode :- succ shape).
  const std::string program =
      "materialize(a, infinity, 100, keys(2,3)).\n"
      "materialize(h, infinity, 100, keys(2)).\n"
      "r1 h@X(X,K) :- a@X(X,K,S).\n";
  auto n = Install(program);
  n->Start();
  n->GetTable("a")->Insert(
      Tuple::Make("a", {Value::Addr("n1"), Value::Int(1), Value::Int(10)}));
  n->GetTable("a")->Insert(
      Tuple::Make("a", {Value::Addr("n1"), Value::Int(1), Value::Int(20)}));
  ASSERT_EQ(n->GetTable("h")->size(), 1u);
  n->GetTable("a")->DeleteByKey({Value::Int(1), Value::Int(10)});
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->GetTable("h")->size(), 1u);  // second derivation still holds
}

// --- Incremental table aggregates ----------------------------------------

TEST_F(SemiNaiveTest, MinSurvivesRetractionOfNonExtremum) {
  const std::string program =
      "materialize(dist, infinity, 100, keys(2)).\n"
      "best@X(X,min<D>) :- dist@X(X,S,D).\n";
  auto n = Install(program);
  std::vector<int64_t> outs;
  n->Subscribe("best", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsInt()); });
  n->Start();
  auto row = [](int64_t s, int64_t d) {
    return Tuple::Make("dist", {Value::Addr("n1"), Value::Int(s), Value::Int(d)});
  };
  n->GetTable("dist")->Insert(row(1, 50));
  n->GetTable("dist")->Insert(row(2, 20));
  n->GetTable("dist")->Insert(row(3, 90));           // min unchanged: silent
  n->GetTable("dist")->DeleteByKey({Value::Int(3)});  // non-extremum: silent
  n->GetTable("dist")->DeleteByKey({Value::Int(2)});  // extremum: successor
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0], 50);
  EXPECT_EQ(outs[1], 20);
  EXPECT_EQ(outs[2], 50);
}

TEST_F(SemiNaiveTest, MinSupportCountsDuplicateValues) {
  const std::string program =
      "materialize(dist, infinity, 100, keys(2)).\n"
      "best@X(X,min<D>) :- dist@X(X,S,D).\n";
  auto n = Install(program);
  std::vector<int64_t> outs;
  n->Subscribe("best", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsInt()); });
  n->Start();
  auto row = [](int64_t s, int64_t d) {
    return Tuple::Make("dist", {Value::Addr("n1"), Value::Int(s), Value::Int(d)});
  };
  n->GetTable("dist")->Insert(row(1, 10));
  n->GetTable("dist")->Insert(row(2, 10));            // duplicate extremum
  n->GetTable("dist")->Insert(row(3, 40));
  n->GetTable("dist")->DeleteByKey({Value::Int(1)});  // one of two 10s: silent
  n->GetTable("dist")->DeleteByKey({Value::Int(2)});  // last 10: min -> 40
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0], 10);
  EXPECT_EQ(outs[1], 40);
}

TEST_F(SemiNaiveTest, ReplaceRetractsDisplacedContribution) {
  const std::string program =
      "materialize(dist, infinity, 100, keys(2)).\n"
      "total@X(X,sum<D>) :- dist@X(X,S,D).\n";
  auto n = Install(program);
  std::vector<int64_t> outs;
  n->Subscribe("total", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsInt()); });
  n->Start();
  auto row = [](int64_t s, int64_t d) {
    return Tuple::Make("dist", {Value::Addr("n1"), Value::Int(s), Value::Int(d)});
  };
  n->GetTable("dist")->Insert(row(1, 5));
  n->GetTable("dist")->Insert(row(2, 7));
  n->GetTable("dist")->Insert(row(1, 9));  // replaces the 5 by primary key
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0], 5);
  EXPECT_EQ(outs[1], 12);
  EXPECT_EQ(outs[2], 16);  // 12 - 5 + 9: the displaced row was retracted
}

TEST_F(SemiNaiveTest, CountEmitsZeroWhenGroupVanishes) {
  const std::string program =
      "materialize(m, infinity, 100, keys(2)).\n"
      "cnt@X(X,count<*>) :- m@X(X,K).\n";
  auto n = Install(program);
  std::vector<int64_t> outs;
  n->Subscribe("cnt", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsInt()); });
  n->Start();
  n->GetTable("m")->Insert(Tuple::Make("m", {Value::Addr("n1"), Value::Int(1)}));
  n->GetTable("m")->Insert(Tuple::Make("m", {Value::Addr("n1"), Value::Int(2)}));
  n->GetTable("m")->DeleteByKey({Value::Int(1)});
  n->GetTable("m")->DeleteByKey({Value::Int(2)});
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(outs[0], 1);
  EXPECT_EQ(outs[1], 2);
  EXPECT_EQ(outs[2], 1);
  EXPECT_EQ(outs[3], 0);  // counts report empty groups (S1/S2 eviction loop)
}

TEST_F(SemiNaiveTest, AvgTracksGroupedRows) {
  const std::string program =
      "materialize(m, infinity, 100, keys(2)).\n"
      "mean@X(X,G,avg<D>) :- m@X(X,K,G,D).\n";
  auto n = Install(program);
  std::vector<std::pair<int64_t, int64_t>> outs;  // (group, avg)
  n->Subscribe("mean", [&](const TuplePtr& t) {
    outs.emplace_back(t->field(1).AsInt(), t->field(2).AsInt());
  });
  n->Start();
  auto row = [](int64_t k, int64_t g, int64_t d) {
    return Tuple::Make("m", {Value::Addr("n1"), Value::Int(k), Value::Int(g), Value::Int(d)});
  };
  n->GetTable("m")->Insert(row(1, 7, 10));
  n->GetTable("m")->Insert(row(2, 7, 20));           // group 7 avg -> 15
  n->GetTable("m")->Insert(row(3, 8, 99));           // independent group
  n->GetTable("m")->DeleteByKey({Value::Int(1)});    // group 7 avg -> 20
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(outs[0], (std::pair<int64_t, int64_t>(7, 10)));
  EXPECT_EQ(outs[1], (std::pair<int64_t, int64_t>(7, 15)));
  EXPECT_EQ(outs[2], (std::pair<int64_t, int64_t>(8, 99)));
  EXPECT_EQ(outs[3], (std::pair<int64_t, int64_t>(7, 20)));
}

TEST_F(SemiNaiveTest, ReentrantDeltasAreQueuedNotDropped) {
  // cnt's emission drives a rule that writes back into the watched table:
  // the watcher's OnDelta re-enters while the triggering delta is still
  // being processed. Queued draining must reach the fixpoint (3 rows).
  const std::string program =
      "materialize(src, infinity, 100, keys(2)).\n"
      "materialize(cnt, infinity, 10, keys(1)).\n"
      "r1 cnt@X(X,count<*>) :- src@X(X,K).\n"
      "r2 src@X(X, 100 + C) :- cnt@X(X,C), C < 3.\n";
  auto n = Install(program);
  n->Start();
  n->GetTable("src")->Insert(Tuple::Make("src", {Value::Addr("n1"), Value::Int(1)}));
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->GetTable("src")->size(), 3u);
  TuplePtr cnt = n->GetTable("cnt")->Scan()[0];
  EXPECT_EQ(cnt->field(1).AsInt(), 3);
}

// --- Backpressure plumbing ------------------------------------------------

// Captures the congestion callback a join hands downstream.
class CongestedSink : public Element {
 public:
  CongestedSink() : Element("congested_sink") {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override {
    (void)port;
    tuples.push_back(t);
    saw_callback.push_back(cb != nullptr);
    return 0;  // always congested
  }
  std::vector<TuplePtr> tuples;
  std::vector<bool> saw_callback;
};

TEST_F(SemiNaiveTest, JoinForwardsBackpressureCallback) {
  TableSpec spec;
  spec.name = "t";
  spec.key_positions = {1};
  Table table(std::move(spec), &loop_);
  table.Insert(Tuple::Make("t", {Value::Int(1), Value::Int(10)}));
  table.Insert(Tuple::Make("t", {Value::Int(1), Value::Int(20)}));

  PelProgram key;  // join on input field 0 == table column 0
  key.Emit(PelOp::kPushField, 0);
  JoinElement join("join", PelEnv{}, &table, {JoinKey{0, std::move(key)}}, "out");
  CongestedSink sink;
  join.BindOutput(0, &sink, 0);

  bool fired = false;
  int signal = join.Push(0, Tuple::Make("ev", {Value::Int(1)}), [&]() { fired = true; });
  EXPECT_EQ(signal, 0);  // congestion propagates upstream
  ASSERT_EQ(sink.tuples.size(), 2u);
  // The caller's callback reached the sink with every match; a congested
  // downstream can actually wake the pusher again.
  EXPECT_TRUE(sink.saw_callback[0]);
  EXPECT_TRUE(sink.saw_callback[1]);
  EXPECT_FALSE(fired);  // the sink owns when to invoke it
}

}  // namespace
}  // namespace p2
