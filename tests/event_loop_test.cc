#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TEST(SimEventLoop, RunsEventsInTimestampOrder) {
  SimEventLoop loop;
  std::vector<int> order;
  loop.ScheduleAfter(3.0, [&]() { order.push_back(3); });
  loop.ScheduleAfter(1.0, [&]() { order.push_back(1); });
  loop.ScheduleAfter(2.0, [&]() { order.push_back(2); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 3.0);
}

TEST(SimEventLoop, FifoAmongEqualTimestamps) {
  SimEventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAfter(1.0, [&, i]() { order.push_back(i); });
  }
  loop.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimEventLoop, TimeAdvancesToEventTime) {
  SimEventLoop loop;
  double seen = -1;
  loop.ScheduleAfter(5.5, [&]() { seen = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(seen, 5.5);
}

TEST(SimEventLoop, NestedSchedulingFromHandler) {
  SimEventLoop loop;
  std::vector<double> times;
  loop.ScheduleAfter(1.0, [&]() {
    times.push_back(loop.Now());
    loop.ScheduleAfter(2.0, [&]() { times.push_back(loop.Now()); });
  });
  loop.RunAll();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 1.0);
  EXPECT_EQ(times[1], 3.0);
}

TEST(SimEventLoop, CancelPreventsExecution) {
  SimEventLoop loop;
  bool ran = false;
  TimerId id = loop.ScheduleAfter(1.0, [&]() { ran = true; });
  loop.Cancel(id);
  loop.RunAll();
  EXPECT_FALSE(ran);
  // Cancelling an invalid or already-fired id is a no-op.
  loop.Cancel(kInvalidTimer);
  loop.Cancel(9999);
}

TEST(SimEventLoop, RunUntilStopsAtDeadline) {
  SimEventLoop loop;
  std::vector<int> order;
  loop.ScheduleAfter(1.0, [&]() { order.push_back(1); });
  loop.ScheduleAfter(2.0, [&]() { order.push_back(2); });
  loop.ScheduleAfter(5.0, [&]() { order.push_back(5); });
  loop.RunUntil(2.0);  // events at exactly the deadline run
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.Now(), 2.0);
  loop.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5}));
  EXPECT_EQ(loop.Now(), 10.0);  // time advances to the deadline
}

TEST(SimEventLoop, NegativeDelayClampsToNow) {
  SimEventLoop loop;
  loop.RunUntil(4.0);
  double seen = -1;
  loop.ScheduleAfter(-3.0, [&]() { seen = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(seen, 4.0);
}

TEST(SimEventLoop, SelfPerpetuatingTimerBoundedByRunUntil) {
  SimEventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&]() {
    ++ticks;
    loop.ScheduleAfter(1.0, tick);
  };
  loop.ScheduleAfter(1.0, tick);
  loop.RunUntil(10.0);
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(loop.events_run(), 10u);
}

TEST(SimEventLoop, PendingCountExcludesCancelled) {
  SimEventLoop loop;
  TimerId a = loop.ScheduleAfter(1.0, []() {});
  loop.ScheduleAfter(2.0, []() {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

}  // namespace
}  // namespace p2
