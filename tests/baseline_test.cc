#include <gtest/gtest.h>

#include "src/baseline/chord_baseline.h"
#include "src/harness/workload.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

BaselineChordConfig FastBaseline() {
  BaselineChordConfig c;
  c.stabilize_period_s = 2.0;
  c.finger_fix_period_s = 2.0;
  c.ping_period_s = 2.0;
  c.join_retry_s = 2.0;
  return c;
}

TEST(BaselineChord, SingleNodeSelfRing) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 9);
  auto t = net.MakeTransport("b0", 0);
  BaselineChordNode node(&loop, t.get(), 1, FastBaseline(), "");
  node.Start();
  loop.RunUntil(5.0);
  auto best = node.BestSuccessor();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->second, "b0");
  bool answered = false;
  node.OnLookupResult([&](const BaselineChordNode::LookupResult& r) {
    EXPECT_EQ(r.successor_addr, "b0");
    answered = true;
  });
  node.Lookup(Uint160::HashOf("k"));
  loop.RunUntil(7.0);
  EXPECT_TRUE(answered);
}

TEST(BaselineChord, RingFormsViaTestbed) {
  TestbedConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 4;
  cfg.use_baseline = true;
  cfg.baseline = FastBaseline();
  cfg.join_stagger_s = 0.5;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(80.0);
  EXPECT_EQ(tb.JoinedFraction(), 1.0);
  EXPECT_GE(tb.RingConsistencyFraction(), 0.9);
}

TEST(BaselineChord, LookupsResolveConsistently) {
  TestbedConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 6;
  cfg.use_baseline = true;
  cfg.baseline = FastBaseline();
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(80.0);
  for (int i = 0; i < 20; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(1.0);
  }
  tb.RunFor(10.0);
  size_t completed = 0;
  size_t consistent = 0;
  for (const auto& rec : tb.lookups()) {
    if (rec.completed) {
      ++completed;
      consistent += rec.consistent ? 1 : 0;
      EXPECT_LE(rec.hops, 10);
    }
  }
  EXPECT_GE(completed, 18u);
  EXPECT_GE(static_cast<double>(consistent), 0.9 * static_cast<double>(completed));
}

TEST(BaselineChord, DeathDetectedByPings) {
  TestbedConfig cfg;
  cfg.num_nodes = 6;
  cfg.seed = 8;
  cfg.use_baseline = true;
  cfg.baseline = FastBaseline();
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(60.0);
  ASSERT_GE(tb.RingConsistencyFraction(), 0.9);
  tb.ReplaceNode(3);
  tb.RunFor(60.0);
  EXPECT_GE(tb.JoinedFraction(), 0.99);
  EXPECT_GE(tb.RingConsistencyFraction(), 0.8);
}

}  // namespace
}  // namespace p2
