// MetricsRegistry / observability-layer tests: lane merge determinism,
// log-histogram bucketing, Prometheus rendering (including labeled
// histogram suffix placement), re-entrant updates from table-delta
// callbacks, the ChannelStatsPool merge path, and the edge-case fixes in
// the harness Cdf/Histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/metrics.h"
#include "src/obs/channel_stats.h"
#include "src/obs/registry.h"
#include "src/obs/watch.h"
#include "src/p2/node.h"
#include "src/runtime/tuple.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/table/table.h"

namespace p2 {
namespace {

TEST(Registry, LaneMergeSumsSameSeries) {
  obs::Registry reg(4);
  for (size_t lane = 0; lane < 4; ++lane) {
    reg.GetCounter(lane, "p2_x_total")->Inc(lane + 1);
  }
  obs::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("p2_x_total"), 1u + 2 + 3 + 4);
}

TEST(Registry, LaneIndexClampsIntoRange) {
  obs::Registry reg(2);
  reg.GetCounter(7, "p2_y_total")->Inc();  // lane 7 % 2 == lane 1
  EXPECT_EQ(reg.TakeSnapshot().counters.at("p2_y_total"), 1u);
}

TEST(Registry, HandlesAreStableAcrossRegistrations) {
  obs::Registry reg(1);
  obs::Counter* first = reg.GetCounter(0, "p2_a_total");
  // Force plenty of rehashing/growth in the lane's maps and stores.
  for (int i = 0; i < 1000; ++i) {
    reg.GetCounter(0, "p2_fill_" + std::to_string(i));
  }
  EXPECT_EQ(first, reg.GetCounter(0, "p2_a_total"));
  first->Inc();
  EXPECT_EQ(reg.TakeSnapshot().counters.at("p2_a_total"), 1u);
}

TEST(Registry, ConcurrentSingleWriterLanesMergeExactly) {
  // The production contract: one writer thread per lane. The merged total
  // must be exact once the writers have joined.
  constexpr size_t kLanes = 4;
  constexpr uint64_t kPerLane = 100000;
  obs::Registry reg(kLanes);
  std::vector<std::thread> writers;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    writers.emplace_back([&reg, lane]() {
      obs::Counter* c = reg.GetCounter(lane, "p2_hot_total");
      obs::LogHistogram* h = reg.GetHistogram(lane, "p2_hot_ns");
      for (uint64_t i = 0; i < kPerLane; ++i) {
        c->Inc();
        h->Observe(i);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  obs::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("p2_hot_total"), kLanes * kPerLane);
  EXPECT_EQ(snap.histograms.at("p2_hot_ns").count, kLanes * kPerLane);
}

TEST(Registry, GaugeMergesByDeltaSummation) {
  obs::Registry reg(2);
  reg.GetGauge(0, "p2_rows")->Add(10);
  reg.GetGauge(1, "p2_rows")->Add(5);
  reg.GetGauge(0, "p2_rows")->Add(-3);
  EXPECT_EQ(reg.TakeSnapshot().gauges.at("p2_rows"), 12);
}

TEST(LogHistogram, BucketsArePowersOfTwo) {
  obs::LogHistogram h;
  h.Observe(0);     // bucket 0 (0 counts as 1)
  h.Observe(1);     // bucket 0
  h.Observe(2);     // bucket 1
  h.Observe(3);     // bucket 1
  h.Observe(4);     // bucket 2
  h.Observe(1024);  // bucket 10
  h.Observe(UINT64_MAX);  // bucket 63
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket(63), 1u);
  EXPECT_EQ(h.count(), 7u);
}

TEST(Registry, PrometheusRenderingIsDeterministicAndWellFormed) {
  obs::Registry reg(2);
  reg.GetCounter(0, "p2_rule_fires_total{rule=\"a\"}")->Inc(3);
  reg.GetCounter(1, "p2_rule_fires_total{rule=\"b\"}")->Inc(4);
  reg.GetGauge(0, "p2_table_rows{table=\"t\"}")->Add(7);
  reg.GetHistogram(1, "p2_wait_ns{shard=\"1\"}")->Observe(5);
  std::string text = reg.PrometheusText();
  EXPECT_EQ(text, reg.PrometheusText());
  // One TYPE line per family, even with several labeled series.
  EXPECT_NE(text.find("# TYPE p2_rule_fires_total counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE p2_rule_fires_total counter",
                      text.find("# TYPE p2_rule_fires_total counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("p2_rule_fires_total{rule=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("p2_rule_fires_total{rule=\"b\"} 4"), std::string::npos);
  EXPECT_NE(text.find("p2_table_rows{table=\"t\"} 7"), std::string::npos);
  // Histogram suffixes splice before the label block, with le= appended
  // inside it: p2_wait_ns_bucket{shard="1",le="7"}.
  EXPECT_NE(text.find("p2_wait_ns_bucket{shard=\"1\",le=\"7\"} 1"), std::string::npos);
  EXPECT_NE(text.find("p2_wait_ns_bucket{shard=\"1\",le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("p2_wait_ns_sum{shard=\"1\"} 5"), std::string::npos);
  EXPECT_NE(text.find("p2_wait_ns_count{shard=\"1\"} 1"), std::string::npos);
  EXPECT_EQ(text.find("}_bucket"), std::string::npos);
}

TEST(Registry, CollectorsContributeAtSnapshotTime) {
  obs::Registry reg(1);
  reg.AddCollector([](obs::Snapshot* snap) { snap->counters["p2_ext_total"] = 9; });
  EXPECT_EQ(reg.TakeSnapshot().counters.at("p2_ext_total"), 9u);
}

// A table-delta listener that updates metrics while the table itself is
// bound to the same registry: Insert fires the bound counters, then the
// listener re-enters the registry (handle lookup + increments). This is
// exactly what happens when an instrumented rule chain is driven by a
// table delta.
TEST(Registry, ReentrantUpdatesFromTableDeltaCallbacks) {
  SimEventLoop loop;
  obs::Registry reg(1);
  TableSpec spec;
  spec.name = "link";
  spec.key_positions = {0};
  spec.arity = 2;
  Table table(spec, &loop);
  table.BindObs(&reg, 0);
  table.AddDeltaListener([&reg](const TuplePtr&) {
    reg.GetCounter(0, "p2_delta_seen_total")->Inc();
    reg.GetHistogram(0, "p2_delta_ns")->Observe(42);
  });
  table.Insert(Tuple::Make("link", {Value::Str("a"), Value::Int(1)}));
  table.Insert(Tuple::Make("link", {Value::Str("b"), Value::Int(2)}));
  table.Insert(Tuple::Make("link", {Value::Str("a"), Value::Int(3)}));  // replace
  obs::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("p2_delta_seen_total"), 3u);
  EXPECT_EQ(snap.counters.at("p2_table_inserts_total{table=\"link\"}"), 2u);
  EXPECT_EQ(snap.counters.at("p2_table_replaces_total{table=\"link\"}"), 1u);
  EXPECT_EQ(snap.counters.at("p2_table_deltas_total{table=\"link\"}"), 3u);
  EXPECT_EQ(snap.gauges.at("p2_table_rows{table=\"link\"}"), 2);
  EXPECT_EQ(snap.histograms.at("p2_delta_ns").count, 3u);
}

TEST(ChannelStatsPool, RetiredPlusLiveMerge) {
  obs::ChannelStatsPool pool;
  ReliableChannelStats dead;
  dead.data_frames_sent = 10;
  dead.queue_high_watermark = 4;
  pool.Retire(dead);
  pool.SetLiveSource(
      [](ReliableChannelStats* total) {
        ReliableChannelStats live;
        live.data_frames_sent = 5;
        live.queue_high_watermark = 9;
        total->MergeFrom(live);
      },
      [](SendFailureCounters* total) { total->oversize += 2; });
  ReliableChannelStats total = pool.TotalReliable();
  EXPECT_EQ(total.data_frames_sent, 15u);
  EXPECT_EQ(total.queue_high_watermark, 9u);  // high watermark is a max
  EXPECT_EQ(pool.TotalSendFailures().oversize, 2u);

  obs::Snapshot snap;
  pool.Collect(&snap);
  EXPECT_EQ(snap.counters.at("p2_channel_data_frames_sent_total"), 15u);
  EXPECT_EQ(snap.counters.at("p2_send_fail_oversize_total"), 2u);
  EXPECT_EQ(snap.gauges.at("p2_channel_queue_high_watermark"), 9);
}

// sysstats is a real table: overlay rules join it like any relation, and
// the periodic refresh keeps its values current on the node's executor.
TEST(Sysstats, RulesCanQueryTheirOwnRuntime) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), /*seed=*/3);
  auto transport = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  nc.sysstats_period_s = 1.0;
  P2Node node(nc);
  std::string err;
  ASSERT_TRUE(node.Install("r1 stat@X(X, M, V) :- probe@X(X), sysstats@X(X, M, V).",
                           &err))
      << err;
  std::set<std::string> metrics_seen;
  node.Subscribe("stat", [&metrics_seen](const TuplePtr& t) {
    metrics_seen.insert(t->field(1).AsStr());
  });
  node.Start();
  loop.RunUntil(2.5);  // a couple of refreshes
  node.Inject(Tuple::Make("probe", {Value::Addr("n0")}));
  loop.RunUntil(3.0);
  EXPECT_TRUE(metrics_seen.count("rule_fires")) << metrics_seen.size();
  EXPECT_TRUE(metrics_seen.count("table_rows"));
  EXPECT_TRUE(metrics_seen.count("tuples_sent"));
  EXPECT_TRUE(metrics_seen.count("memory_bytes"));

  // The refresh keeps counting: rule_fires grows between refreshes.
  Table* sys = node.GetTable("sysstats");
  ASSERT_NE(sys, nullptr);
  int64_t fires = 0;
  for (const TuplePtr& row : sys->Scan()) {
    if (row->field(1).AsStr() == "rule_fires") {
      fires = row->field(2).AsInt();
    }
  }
  EXPECT_GT(fires, 0);
  node.Stop();
}

TEST(WatchFormat, LineCarriesTimeNodePointLabelTuple) {
  TuplePtr t = Tuple::Make("link", {Value::Str("a"), Value::Int(1)});
  std::string line = obs::FormatWatchLine(1.5, "n3", "head", "R1+link", *t);
  EXPECT_EQ(line.find("watch t=1.500000 node=n3 point=head label=R1+link "), 0u);
  EXPECT_NE(line.find("link("), std::string::npos);
}

// --- Harness Cdf/Histogram edge behavior (src/harness/metrics.cc) -------

TEST(CdfEdge, SingleSampleQuantilesDoNotInterpolateOutOfRange) {
  Cdf cdf;
  cdf.Add(7.0);
  EXPECT_EQ(cdf.Quantile(0.0), 7.0);
  EXPECT_EQ(cdf.Quantile(0.5), 7.0);
  EXPECT_EQ(cdf.Quantile(0.99), 7.0);
  EXPECT_EQ(cdf.Quantile(1.0), 7.0);
}

TEST(CdfEdge, OutOfRangeQuantileClampsToEnds) {
  Cdf cdf;
  cdf.Add(1.0);
  cdf.Add(2.0);
  cdf.Add(3.0);
  EXPECT_EQ(cdf.Quantile(-0.5), 1.0);
  EXPECT_EQ(cdf.Quantile(1.5), 3.0);
  EXPECT_EQ(cdf.Quantile(std::nan("")), 1.0);
}

TEST(HistogramEdge, OutOfRangeAddClampsIntoBoundaryBuckets) {
  Histogram h(0, 10, 10);
  h.Add(-5);    // below range -> first bucket
  h.Add(100);   // above range -> last bucket
  h.Add(10);    // exactly hi -> last bucket
  auto freq = h.Frequencies();
  EXPECT_DOUBLE_EQ(freq[0].second, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(freq[9].second, 2.0 / 3.0);
}

TEST(HistogramEdge, DegenerateShapesAreSafe) {
  Histogram zero_buckets(0, 10, 0);
  zero_buckets.Add(5);  // must not divide by zero or index out of range
  EXPECT_EQ(zero_buckets.Frequencies().size(), 1u);
  Histogram inverted(10, 0, 4);
  inverted.Add(5);  // hi <= lo: everything lands in a bucket, not UB
  double sum = 0;
  for (const auto& [x, f] : inverted.Frequencies()) {
    (void)x;
    sum += f;
  }
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

}  // namespace
}  // namespace p2
